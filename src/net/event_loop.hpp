// net/event_loop.hpp — one epoll-driven reactor thread.
//
// An EventLoop multiplexes non-blocking file descriptors on a single
// thread: callers register an fd with an interest mask and a callback,
// and run() dispatches kernel readiness events to the callbacks until
// stop() is called. Cross-thread work enters through post(), which
// enqueues a task and wakes the loop via an eventfd; everything else
// (add_fd/mod_fd/del_fd and the callbacks themselves) must happen on
// the loop thread, or before run() starts.
//
// A periodic tick (set_tick) drives time-based housekeeping — idle
// sweeps and drain checks in net::Server — without per-connection
// timer fds. Level-triggered epoll keeps the dispatch logic simple:
// a callback that does not consume its readiness is simply called
// again on the next iteration.

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace net {

class EventLoop {
 public:
  using FdCallback = std::function<void(std::uint32_t events)>;

  /// Creates the epoll instance and wakeup eventfd. Throws
  /// std::runtime_error if either kernel object cannot be created.
  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Registers `fd` with interest `events` (EPOLLIN/EPOLLOUT/...).
  /// Loop-thread only (or before run()).
  void add_fd(int fd, std::uint32_t events, FdCallback cb);

  /// Changes the interest mask of a registered fd. Loop-thread only.
  void mod_fd(int fd, std::uint32_t events);

  /// Unregisters `fd`. Pending readiness events already harvested for
  /// it in the current iteration are discarded. Loop-thread only.
  void del_fd(int fd);

  /// Enqueues `fn` to run on the loop thread after the current event
  /// batch. Thread-safe; wakes a sleeping loop.
  void post(std::function<void()> fn);

  /// Installs a periodic callback, fired roughly every `period` while
  /// the loop runs. Call before run().
  void set_tick(std::chrono::milliseconds period, std::function<void()> fn);

  /// Dispatches events until stop(). Runs posted tasks after each
  /// event batch and the tick when due.
  void run();

  /// Asks run() to return after the current iteration. Thread-safe.
  void stop() noexcept;

 private:
  void wake() noexcept;
  void run_pending();

  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::atomic<bool> stop_flag_{false};

  std::mutex mu_;  ///< guards pending_
  std::vector<std::function<void()>> pending_;

  std::unordered_map<int, FdCallback> fds_;  ///< loop-thread only
  std::chrono::milliseconds tick_period_{0};
  std::function<void()> tick_;
};

}  // namespace net
