// net/event_loop.hpp — one epoll-driven reactor thread.
//
// An EventLoop multiplexes non-blocking file descriptors on a single
// thread: callers register an fd with an interest mask and a callback,
// and run() dispatches kernel readiness events to the callbacks until
// stop() is called. Cross-thread work enters through post(), which
// enqueues a task and wakes the loop via an eventfd; everything else
// (add_fd/mod_fd/del_fd and the callbacks themselves) must happen on
// the loop thread, or before run() starts.
//
// That confinement rule is a compile-time contract: the EventLoop is
// itself a capability (core/thread_annotations.hpp), loop-confined
// state is BDRMAPIT_GUARDED_BY the loop, and loop-confined entry
// points are BDRMAPIT_REQUIRES(this). Code running on the loop thread
// states so with assert_in_loop(), which doubles as a runtime
// thread-identity check — so both Clang's analysis and a Debug run
// catch a callback invoked from the wrong thread.
//
// A periodic tick (set_tick) drives time-based housekeeping — idle
// sweeps and drain checks in net::Server — without per-connection
// timer fds. Level-triggered epoll keeps the dispatch logic simple:
// a callback that does not consume its readiness is simply called
// again on the next iteration.

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/thread_annotations.hpp"

namespace net {

class BDRMAPIT_CAPABILITY("EventLoop") EventLoop {
 public:
  using FdCallback = std::function<void(std::uint32_t events)>;

  /// Creates the epoll instance and wakeup eventfd. Throws
  /// std::runtime_error if either kernel object cannot be created.
  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Declares that the caller runs on this loop's thread (or in the
  /// single-threaded setup phase before run() binds one). Aborts if
  /// that is false; tells the capability analysis the loop-confinement
  /// capability is held for the rest of the scope. Every loop callback
  /// and pre-run setup block calls this before touching loop-confined
  /// state.
  void assert_in_loop() const noexcept BDRMAPIT_ASSERT_CAPABILITY(this);

  /// Registers `fd` with interest `events` (EPOLLIN/EPOLLOUT/...).
  /// Loop-thread only (or before run()).
  void add_fd(int fd, std::uint32_t events, FdCallback cb)
      BDRMAPIT_REQUIRES(this);

  /// Changes the interest mask of a registered fd. Loop-thread only.
  void mod_fd(int fd, std::uint32_t events) BDRMAPIT_REQUIRES(this);

  /// Unregisters `fd`. Pending readiness events already harvested for
  /// it in the current iteration are discarded. Loop-thread only.
  void del_fd(int fd) BDRMAPIT_REQUIRES(this);

  /// Enqueues `fn` to run on the loop thread after the current event
  /// batch. Thread-safe; wakes a sleeping loop.
  void post(std::function<void()> fn) BDRMAPIT_EXCLUDES(mu_);

  /// Installs a periodic callback, fired roughly every `period` while
  /// the loop runs. Call before run().
  void set_tick(std::chrono::milliseconds period, std::function<void()> fn)
      BDRMAPIT_REQUIRES(this);

  /// Dispatches events until stop(). Binds the loop to the calling
  /// thread, runs posted tasks after each event batch and the tick
  /// when due.
  void run() BDRMAPIT_EXCLUDES(mu_);

  /// Asks run() to return after the current iteration. Thread-safe.
  void stop() noexcept;

 private:
  void wake() noexcept;
  void run_pending() BDRMAPIT_EXCLUDES(mu_);

  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::atomic<bool> stop_flag_{false};
  std::atomic<std::thread::id> thread_id_{};  ///< bound at run() entry

  core::Mutex mu_;
  std::vector<std::function<void()>> pending_ BDRMAPIT_GUARDED_BY(mu_);

  std::unordered_map<int, FdCallback> fds_ BDRMAPIT_GUARDED_BY(this);
  std::chrono::milliseconds tick_period_ BDRMAPIT_GUARDED_BY(this){0};
  std::function<void()> tick_ BDRMAPIT_GUARDED_BY(this);
};

}  // namespace net
