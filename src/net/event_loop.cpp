#include "net/event_loop.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <stdexcept>
#include <utility>

#include "core/failpoint.hpp"

namespace net {

void EventLoop::assert_in_loop() const noexcept {
  const std::thread::id bound = thread_id_.load(std::memory_order_acquire);
  // Unbound: the single-threaded setup phase before run(); any caller
  // may touch loop-confined state because no loop thread exists yet.
  if (bound == std::thread::id()) return;
  if (bound != std::this_thread::get_id()) std::abort();
}

EventLoop::EventLoop() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) throw std::runtime_error("epoll_create1 failed");
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) {
    ::close(epoll_fd_);
    epoll_fd_ = -1;
    throw std::runtime_error("eventfd failed");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0) {
    ::close(wake_fd_);
    ::close(epoll_fd_);
    wake_fd_ = epoll_fd_ = -1;
    throw std::runtime_error("epoll_ctl(wake) failed");
  }
}

EventLoop::~EventLoop() {
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

void EventLoop::add_fd(int fd, std::uint32_t events, FdCallback cb) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0)
    throw std::runtime_error("epoll_ctl(add) failed");
  fds_[fd] = std::move(cb);
}

void EventLoop::mod_fd(int fd, std::uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0)
    throw std::runtime_error("epoll_ctl(mod) failed");
}

void EventLoop::del_fd(int fd) {
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  fds_.erase(fd);
}

void EventLoop::post(std::function<void()> fn) {
  {
    const core::MutexLock lock(mu_);
    pending_.push_back(std::move(fn));
  }
  wake();
}

void EventLoop::set_tick(std::chrono::milliseconds period,
                         std::function<void()> fn) {
  tick_period_ = period;
  tick_ = std::move(fn);
}

void EventLoop::wake() noexcept {
  // "net.wake" simulates a lost eventfd write. The loop must not wedge:
  // run() re-checks the pending queue before every epoll_wait and
  // shortens its sleep to zero while tasks are queued, so a swallowed
  // wake costs at most one already-scheduled wakeup of latency.
  if (BDRMAPIT_FAILPOINT("net.wake")) return;
  const std::uint64_t one = 1;
  // A full eventfd counter still leaves the loop awake; ignore errors.
  [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof one);
}

void EventLoop::run_pending() {
  std::vector<std::function<void()>> tasks;
  {
    const core::MutexLock lock(mu_);
    tasks.swap(pending_);
  }
  for (auto& task : tasks) task();
}

void EventLoop::run() {
  // Bind the loop to this thread: from here on, assert_in_loop()
  // vouches only for the running thread.
  thread_id_.store(std::this_thread::get_id(), std::memory_order_release);
  assert_in_loop();

  using Clock = std::chrono::steady_clock;
  constexpr int kMaxEvents = 128;
  epoll_event events[kMaxEvents];

  Clock::time_point next_tick = Clock::time_point::max();
  if (tick_ && tick_period_.count() > 0) next_tick = Clock::now() + tick_period_;

  while (!stop_flag_.load(std::memory_order_acquire)) {
    int timeout_ms = -1;
    if (next_tick != Clock::time_point::max()) {
      const auto until = std::chrono::duration_cast<std::chrono::milliseconds>(
          next_tick - Clock::now());
      timeout_ms = static_cast<int>(std::max<std::int64_t>(0, until.count()));
    }
    // Lost-wakeup immunity: if tasks are already queued, don't sleep.
    // The eventfd write in wake() is best-effort (and fault-injectable);
    // this check is what makes a swallowed wake harmless.
    {
      const core::MutexLock lock(mu_);
      if (!pending_.empty()) timeout_ms = 0;
    }
    const int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("epoll_wait failed");
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        std::uint64_t drained = 0;
        [[maybe_unused]] const ssize_t r =
            ::read(wake_fd_, &drained, sizeof drained);
        continue;
      }
      // A callback earlier in this batch may have unregistered this fd;
      // the map lookup is the liveness check.
      const auto it = fds_.find(fd);
      if (it == fds_.end()) continue;
      it->second(events[i].events);
    }
    run_pending();
    if (next_tick != Clock::time_point::max() && Clock::now() >= next_tick) {
      tick_();
      next_tick = Clock::now() + tick_period_;
    }
  }
  run_pending();  // don't strand tasks posted just before stop()
}

void EventLoop::stop() noexcept {
  stop_flag_.store(true, std::memory_order_release);
  wake();
}

}  // namespace net
