#include "net/server.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <new>
#include <utility>

#include "parallel/thread_pool.hpp"

namespace net {

Server::Server(ServerConfig config, Handler handler,
               FrameHandler frame_handler)
    : config_(std::move(config)),
      handler_(std::move(handler)),
      frame_handler_(std::move(frame_handler)),
      source_limiter_(config_.rate_limit_source, config_.rate_burst_source,
                      config_.rate_source_max) {}

Server::~Server() {
  if (started_ && !joined_) shutdown();
  if (shutdown_fd_ >= 0) ::close(shutdown_fd_);
}

bool Server::start(std::string* error) {
  shutdown_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (shutdown_fd_ < 0) {
    if (error) *error = "eventfd: shutdown channel unavailable";
    return false;
  }

  const unsigned n_loops = parallel::resolve_threads(config_.threads);
  loops_.reserve(n_loops);
  for (unsigned i = 0; i < n_loops; ++i)
    loops_.push_back(std::make_unique<LoopState>());
  acceptor_ = &loops_[0]->loop;
  // Setup phase: no loop thread runs yet, so the single-threaded
  // assertion below holds for every loop-confined touch in this
  // function (the runtime check passes while a loop is unbound).
  acceptor_->assert_in_loop();

  listener_ = Listener::open(config_.host, config_.port, error);
  if (!listener_) {
    loops_.clear();
    acceptor_ = nullptr;
    ::close(shutdown_fd_);
    shutdown_fd_ = -1;
    return false;
  }
  // Snapshot the resolved port now: port() must answer race-free from
  // any thread, including after a drain tears the listener down.
  bound_port_ = listener_->port();

  // Loop 0 is the acceptor: it owns the listening socket and the
  // shutdown eventfd alongside its share of connections.
  acceptor_->add_fd(listener_->fd(), EPOLLIN, [this](std::uint32_t) {
    acceptor_->assert_in_loop();
    on_acceptable();
  });
  acceptor_->add_fd(shutdown_fd_, EPOLLIN, [this](std::uint32_t) {
    std::uint64_t drained = 0;
    [[maybe_unused]] const ssize_t r =
        ::read(shutdown_fd_, &drained, sizeof drained);
    acceptor_->assert_in_loop();
    begin_shutdown();
  });

  for (std::size_t i = 0; i < loops_.size(); ++i) {
    LoopState& state = *loops_[i];
    const bool sweeps_sources = (i == 0);  // one loop prunes idle sources
    state.loop.assert_in_loop();
    state.loop.set_tick(config_.tick_period, [this, &state, sweeps_sources] {
      state.loop.assert_in_loop();
      const Connection::Clock::time_point now = Connection::Clock::now();
      // check_idle may close a connection, but destruction is deferred
      // through release(), so iterating the live map here is safe.
      for (auto& [conn, owned] : state.conns) conn->check_idle(now);
      if (sweeps_sources) {
        source_limiter_.prune(now);
        acceptor_->assert_in_loop();  // loop 0 is the acceptor
        maybe_resume_accepting();     // fd-exhaustion backoff expiry
      }
      maybe_stop_loop(state);
    });
    state.thread = std::thread([&state, i] {
      parallel::set_current_thread_name(
          ("net-loop-" + std::to_string(i)).c_str());
      state.loop.run();
    });
  }
  started_ = true;
  return true;
}

std::uint16_t Server::port() const noexcept { return bound_port_; }

void Server::on_acceptable() {
  for (;;) {
    if (listener_ == nullptr) return;
    Listener::AcceptStatus status = Listener::AcceptStatus::kExhausted;
    const int cfd = listener_->accept_one(&status);
    if (cfd < 0) {
      switch (status) {
        case Listener::AcceptStatus::kExhausted:
          return;  // backlog drained: epoll re-arms
        case Listener::AcceptStatus::kFdLimit:
          // One pending connection was already shed via the spare fd;
          // stop accepting for a while — retrying now would fail hot.
          accept_failures_.fetch_add(1, std::memory_order_relaxed);
          pause_accepting();
          return;
        default:  // kTransient: count it, let epoll re-deliver
          accept_failures_.fetch_add(1, std::memory_order_relaxed);
          return;
      }
    }
    accepted_.fetch_add(1, std::memory_order_relaxed);

    if (draining_.load(std::memory_order_relaxed) ||
        active_.load(std::memory_order_relaxed) >= config_.max_connections) {
      shed(cfd);
      continue;
    }
    active_.fetch_add(1, std::memory_order_relaxed);
    const std::size_t idx = next_loop_++ % loops_.size();
    LoopState& state = *loops_[idx];
    // Registration must happen on the owning loop's thread; hand the
    // raw fd across and build the Connection there. Allocation may
    // fail under memory pressure — drop exactly that connection, never
    // the process.
    state.loop.post([this, &state, idx, cfd] {
      state.loop.assert_in_loop();
      Connection* raw = nullptr;
      try {
        auto conn = std::make_unique<Connection>(*this, state.loop, idx, cfd);
        raw = conn.get();
        state.conns.emplace(raw, std::move(conn));
        raw->start();
      } catch (const std::bad_alloc&) {
        oom_closed_.fetch_add(1, std::memory_order_relaxed);
        active_.fetch_sub(1, std::memory_order_relaxed);
        closed_.fetch_add(1, std::memory_order_relaxed);
        // Whoever owns the socket closes it: the map entry's destructor
        // if the Connection was emplaced, stack unwinding if emplace
        // threw, and this close only when construction itself failed.
        if (raw == nullptr)
          ::close(cfd);
        else
          state.conns.erase(raw);
      }
    });
  }
}

void Server::pause_accepting() {
  if (listener_ == nullptr) return;
  if (accept_paused_until_ != std::chrono::steady_clock::time_point::min())
    return;  // already paused
  acceptor_->mod_fd(listener_->fd(), 0);  // stop watching; fd stays open
  accept_paused_until_ =
      std::chrono::steady_clock::now() + config_.accept_backoff;
}

void Server::maybe_resume_accepting() {
  if (listener_ == nullptr ||
      accept_paused_until_ == std::chrono::steady_clock::time_point::min())
    return;
  if (std::chrono::steady_clock::now() < accept_paused_until_) return;
  accept_paused_until_ = std::chrono::steady_clock::time_point::min();
  acceptor_->mod_fd(listener_->fd(), EPOLLIN);
  // Level-triggered epoll re-reports connections that queued during
  // the pause, so no explicit drain pass is needed here.
}

void Server::shed(int fd) {
  static constexpr char kReply[] = "ERR\toverloaded\n";
  // Count before the close: once the client observes EOF, NETSTATS
  // must already include this shed.
  shed_.fetch_add(1, std::memory_order_relaxed);
  // Best effort: a client racing into an overloaded server may miss
  // the diagnostic if its socket buffer is already full.
  const ssize_t n = ::send(fd, kReply, sizeof kReply - 1, MSG_NOSIGNAL);
  if (n > 0) bytes_out_.fetch_add(static_cast<std::uint64_t>(n),
                                  std::memory_order_relaxed);
  ::close(fd);
}

void Server::begin_shutdown() {
  if (draining_.exchange(true, std::memory_order_relaxed)) return;
  if (listener_) {
    acceptor_->del_fd(listener_->fd());
    listener_.reset();  // closes the socket: no new connections
  }
  for (std::size_t i = 0; i < loops_.size(); ++i) {
    LoopState& state = *loops_[i];
    state.loop.post([this, &state] {
      state.loop.assert_in_loop();
      // Snapshot first: begin_drain may close and release, and release
      // mutates state.conns via a deferred task.
      std::vector<Connection*> conns;
      conns.reserve(state.conns.size());
      for (auto& [conn, owned] : state.conns) conns.push_back(conn);
      for (Connection* conn : conns) conn->begin_drain();
      maybe_stop_loop(state);
    });
  }
}

void Server::maybe_stop_loop(LoopState& state) {
  if (draining_.load(std::memory_order_relaxed) && state.conns.empty())
    state.loop.stop();
}

void Server::request_shutdown() noexcept {
  if (shutdown_fd_ < 0) return;
  const std::uint64_t one = 1;
  // write(2) is async-signal-safe; this is the whole point of routing
  // shutdown through an eventfd instead of calling into the loops.
  [[maybe_unused]] const ssize_t n = ::write(shutdown_fd_, &one, sizeof one);
}

void Server::wait() {
  if (joined_) return;
  for (auto& state : loops_)
    if (state->thread.joinable()) state->thread.join();
  joined_ = true;
}

void Server::shutdown() {
  request_shutdown();
  wait();
}

std::size_t Server::broadcast(std::function<void()> fn) {
  // After a drain begins the loops are winding down and may stop at
  // any point; a caller waiting on its broadcast copies would hang.
  if (!started_ || draining_.load(std::memory_order_acquire)) return 0;
  for (auto& state : loops_) {
    EventLoop& loop = state->loop;
    loop.post([&loop, fn] {
      loop.assert_in_loop();
      fn();
    });
  }
  return loops_.size();
}

ServerStats Server::stats() const noexcept {
  ServerStats s;
  s.accepted = accepted_.load(std::memory_order_relaxed);
  s.active = active_.load(std::memory_order_relaxed);
  s.closed = closed_.load(std::memory_order_relaxed);
  s.shed = shed_.load(std::memory_order_relaxed);
  s.requests = requests_.load(std::memory_order_relaxed);
  s.bytes_in = bytes_in_.load(std::memory_order_relaxed);
  s.bytes_out = bytes_out_.load(std::memory_order_relaxed);
  s.rate_limited = rate_limited_.load(std::memory_order_relaxed);
  s.frames = frames_.load(std::memory_order_relaxed);
  s.frame_units = frame_units_.load(std::memory_order_relaxed);
  s.read_errors = read_errors_.load(std::memory_order_relaxed);
  s.write_errors = write_errors_.load(std::memory_order_relaxed);
  s.accept_failures = accept_failures_.load(std::memory_order_relaxed);
  s.oom_closed = oom_closed_.load(std::memory_order_relaxed);
  return s;
}

HandlerAction Server::dispatch(std::string_view line, std::string& out) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  return handler_(line, out);
}

FrameResult Server::dispatch_frame(std::string_view buf, std::string& out) {
  const FrameResult r = frame_handler_(buf, out);
  if (r.status == FrameStatus::kHandled) {
    frames_.fetch_add(1, std::memory_order_relaxed);
    frame_units_.fetch_add(r.units, std::memory_order_relaxed);
  }
  return r;
}

void Server::note_bytes_in(std::size_t n) noexcept {
  bytes_in_.fetch_add(n, std::memory_order_relaxed);
}

void Server::note_bytes_out(std::size_t n) noexcept {
  bytes_out_.fetch_add(n, std::memory_order_relaxed);
}

void Server::note_rate_limited() noexcept {
  rate_limited_.fetch_add(1, std::memory_order_relaxed);
}

void Server::note_read_error() noexcept {
  read_errors_.fetch_add(1, std::memory_order_relaxed);
}

void Server::note_write_error() noexcept {
  write_errors_.fetch_add(1, std::memory_order_relaxed);
}

void Server::note_oom_closed() noexcept {
  oom_closed_.fetch_add(1, std::memory_order_relaxed);
}

void Server::release(Connection* conn, std::size_t loop_index) {
  active_.fetch_sub(1, std::memory_order_relaxed);
  closed_.fetch_add(1, std::memory_order_relaxed);
  LoopState& state = *loops_[loop_index];
  // The caller may still be inside one of conn's member functions;
  // destroy it only once the loop unwinds to its task queue.
  state.loop.post([this, &state, conn] {
    state.loop.assert_in_loop();
    state.conns.erase(conn);
    maybe_stop_loop(state);
  });
}

}  // namespace net
