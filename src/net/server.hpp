// net/server.hpp — epoll-based multi-threaded TCP serving front-end.
//
// Server binds one listening socket and runs `threads` EventLoops,
// each on its own thread (the same `--threads` sizing convention as
// parallel::resolve_threads: <= 0 means hardware concurrency). Loop 0
// doubles as the acceptor: accepted sockets are handed round-robin to
// the loops, and every subsequent event for a connection stays on its
// loop — connections never migrate, so their state needs no locks.
//
// The server is transport only. Application behaviour enters through
// a Handler invoked once per complete request line; whatever the
// handler appends to `out` is queued verbatim to the client. The
// bdrmapit serving stack passes serve::Protocol::handle_line, which is
// the same code the stdin REPL runs — byte-identical replies on both
// transports.
//
// Overload and teardown semantics (details in docs/SERVING.md):
//   * beyond max_connections, new clients get one `ERR overloaded`
//     line and an immediate close (counted in stats().shed);
//   * request_shutdown() is async-signal-safe (an eventfd write) and
//     starts a graceful drain: stop accepting, flush every queued
//     reply, close, then the loop threads exit — wait() joins them.

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/thread_annotations.hpp"
#include "net/connection.hpp"
#include "net/event_loop.hpp"
#include "net/listener.hpp"
#include "net/source_limit.hpp"

namespace net {

struct ServerConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0: kernel-assigned; see Server::port()
  int threads = 0;         ///< event loops; <= 0 means hardware concurrency
  std::size_t max_connections = 4096;     ///< beyond this, shed
  std::size_t max_line_bytes = 1 << 16;   ///< per-request-line cap
  std::size_t max_write_buffer = 4u << 20;  ///< pause reading above this
  std::chrono::milliseconds idle_timeout{300'000};
  std::chrono::milliseconds tick_period{1'000};  ///< idle/drain sweep cadence
  /// How long to stop accepting after fd exhaustion (EMFILE/ENFILE) —
  /// under level-triggered epoll an un-acceptable listener would
  /// otherwise wake the acceptor loop in a hot spin. The acceptor's
  /// tick re-enables accepting once the backoff elapses.
  std::chrono::milliseconds accept_backoff{100};

  /// First request byte that selects binary framing instead of line
  /// framing (the BULK protocol's magic). 0 keeps the stream text-only;
  /// a non-zero magic requires a frame handler.
  std::uint8_t binary_magic = 0;

  /// Per-connection token-bucket request rate limit, requests/sec
  /// (one request = one text line or one binary frame). 0 = unlimited.
  double rate_limit = 0;
  /// Token bucket depth (burst size); <= 0 resolves to
  /// max(rate_limit, 1). A fresh connection starts with a full bucket.
  double rate_burst = 0;
  /// Aggregate request rate limit shared by every connection from one
  /// source address (net/source_limit.hpp closes the many-connections
  /// loophole the per-connection bucket leaves open). requests/sec;
  /// 0 = unlimited. A request must pass both buckets to dispatch.
  double rate_limit_source = 0;
  /// Source bucket depth; <= 0 resolves to max(rate_limit_source, 1).
  double rate_burst_source = 0;
  /// Cap on distinct source addresses the source limiter tracks at
  /// once; at the cap the stalest full bucket is evicted (see
  /// net/source_limit.hpp). Bounds limiter memory against
  /// address-diverse abuse. 0 = unbounded.
  std::size_t rate_source_max = 65536;
  /// Reply sent (then close) when a text request exceeds the limit.
  std::string rate_limited_line = "ERR\trate-limited\n";
  /// Reply sent (then close) when a binary frame exceeds the limit;
  /// the application pre-renders its protocol's error frame here.
  std::string rate_limited_frame;
};

/// Live counters, readable from any thread (NETSTATS renders these).
struct ServerStats {
  std::uint64_t accepted = 0;  ///< sockets accepted, including shed ones
  std::uint64_t active = 0;    ///< connections currently in service
  std::uint64_t closed = 0;    ///< served connections since closed
  std::uint64_t shed = 0;      ///< closed immediately with ERR overloaded
  std::uint64_t requests = 0;  ///< text request lines dispatched
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::uint64_t rate_limited = 0;  ///< requests rejected by the token bucket
  std::uint64_t frames = 0;        ///< binary frames answered successfully
  std::uint64_t frame_units = 0;   ///< work units (addresses) across frames
  // Failure counters. Each increments exactly once per failure, which
  // is what lets the chaos suite equate them with failpoint hit counts.
  std::uint64_t read_errors = 0;   ///< recv failed; that connection closed
  std::uint64_t write_errors = 0;  ///< sendmsg failed; that connection closed
  std::uint64_t accept_failures = 0;  ///< accept errors incl. fd exhaustion
  std::uint64_t oom_closed = 0;  ///< connections dropped on a failed alloc
};

/// What the server should do with the connection after a request.
enum class HandlerAction { kContinue, kClose };

/// Outcome of handling bytes that begin with config.binary_magic.
enum class FrameStatus {
  kNeedMore,  ///< incomplete frame; deliver more bytes when they arrive
  kHandled,   ///< frame consumed and answered; keep the session open
  kClose,     ///< frame consumed (reply may be an error); close after flush
};

struct FrameResult {
  FrameStatus status = FrameStatus::kClose;
  std::size_t consumed = 0;  ///< bytes consumed (kHandled / kClose)
  std::size_t units = 0;     ///< application work units answered (kHandled)
};

/// Called with every buffered unparsed byte starting at a
/// config.binary_magic byte. The handler scans for one complete
/// frame, appends its reply to `out`, and reports how many bytes it
/// consumed. Must be safe to call concurrently from every loop
/// thread (the bdrmapit stack keeps per-thread scratch).
using FrameHandler =
    std::function<FrameResult(std::string_view buf, std::string& out)>;

class Server {
 public:
  /// Called once per complete request line (newline stripped); reply
  /// bytes are appended to `out`. Must be safe to call concurrently
  /// from every loop thread.
  using Handler =
      std::function<HandlerAction(std::string_view line, std::string& out)>;

  Server(ServerConfig config, Handler handler,
         FrameHandler frame_handler = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the listener and starts the loop threads. Returns false
  /// with a one-line diagnostic in `*error` (malformed address, port
  /// in use, ...) without spawning anything.
  bool start(std::string* error);

  /// The bound port (meaningful after start(); resolves port 0).
  std::uint16_t port() const noexcept;

  /// Starts a graceful drain. Async-signal-safe: only writes the
  /// shutdown eventfd. Idempotent.
  void request_shutdown() noexcept;

  /// Blocks until every loop thread has exited (after a drain).
  void wait();

  /// request_shutdown() + wait(). For non-signal callers.
  void shutdown();

  /// Posts `fn` to every loop's task queue (each loop runs its own
  /// copy) and returns how many loops were posted to — 0 once a drain
  /// has begun or before start(). The hot-reload driver uses this as a
  /// swap broadcast: when every loop has run its copy, every loop has
  /// passed through its task queue since the publish, so no request
  /// begun on the old generation is still being parsed. Callable from
  /// any thread that has observed start() complete.
  std::size_t broadcast(std::function<void()> fn);

  ServerStats stats() const noexcept;

  const ServerConfig& config() const noexcept { return config_; }

  // ---- used by Connection (internal to src/net) ----------------------
  HandlerAction dispatch(std::string_view line, std::string& out);
  FrameResult dispatch_frame(std::string_view buf, std::string& out);
  bool binary_framing() const noexcept {
    return config_.binary_magic != 0 && frame_handler_ != nullptr;
  }
  void note_bytes_in(std::size_t n) noexcept;
  void note_bytes_out(std::size_t n) noexcept;
  void note_rate_limited() noexcept;
  void note_read_error() noexcept;
  void note_write_error() noexcept;
  void note_oom_closed() noexcept;
  /// The shared per-source-address token-bucket map; connections on
  /// every loop charge it (it locks internally).
  SourceLimiter& source_limiter() noexcept { return source_limiter_; }
  /// Defers destruction of a closed connection to its loop's task
  /// queue and accounts the close.
  void release(Connection* conn, std::size_t loop_index);

 private:
  struct LoopState {
    EventLoop loop;
    std::thread thread;
    /// This loop's connections; confined to its own loop thread.
    std::unordered_map<Connection*, std::unique_ptr<Connection>> conns
        BDRMAPIT_GUARDED_BY(loop);
  };

  void on_acceptable() BDRMAPIT_REQUIRES(acceptor_);
  void shed(int fd);
  void begin_shutdown() BDRMAPIT_REQUIRES(acceptor_);
  void maybe_stop_loop(LoopState& state) BDRMAPIT_REQUIRES(state.loop);
  /// Stops watching the listener for accept_backoff (fd exhaustion:
  /// accepting again immediately would just fail again, hot).
  void pause_accepting() BDRMAPIT_REQUIRES(acceptor_);
  /// Acceptor-tick hook: re-arms the listener once the backoff passed.
  void maybe_resume_accepting() BDRMAPIT_REQUIRES(acceptor_);

  ServerConfig config_;
  Handler handler_;
  FrameHandler frame_handler_;
  SourceLimiter source_limiter_;  ///< shared across loops; locks internally
  /// loops_[0]'s loop — the acceptor. Set in start() before any loop
  /// thread exists, constant afterwards; the capability guarding the
  /// accept-side state below.
  EventLoop* acceptor_ = nullptr;
  std::unique_ptr<Listener> listener_ BDRMAPIT_GUARDED_BY(acceptor_);
  /// Accept backoff deadline after fd exhaustion; min() = not paused.
  std::chrono::steady_clock::time_point accept_paused_until_
      BDRMAPIT_GUARDED_BY(acceptor_) = std::chrono::steady_clock::time_point::min();
  std::uint16_t bound_port_ = 0;  ///< set in start(); constant afterwards
  std::vector<std::unique_ptr<LoopState>> loops_;
  int shutdown_fd_ = -1;
  std::size_t next_loop_ BDRMAPIT_GUARDED_BY(acceptor_) = 0;  ///< round robin
  std::atomic<bool> draining_{false};
  bool started_ = false;
  bool joined_ = false;

  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> active_{0};
  std::atomic<std::uint64_t> closed_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> bytes_in_{0};
  std::atomic<std::uint64_t> bytes_out_{0};
  std::atomic<std::uint64_t> rate_limited_{0};
  std::atomic<std::uint64_t> frames_{0};
  std::atomic<std::uint64_t> frame_units_{0};
  std::atomic<std::uint64_t> read_errors_{0};
  std::atomic<std::uint64_t> write_errors_{0};
  std::atomic<std::uint64_t> accept_failures_{0};
  std::atomic<std::uint64_t> oom_closed_{0};
};

}  // namespace net
