#include "net/connection.hpp"

#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <new>

#include "core/failpoint.hpp"
#include "net/server.hpp"

namespace net {

namespace {
constexpr std::size_t kReadChunk = 64 * 1024;
// Compact wbuf_ once the written prefix crosses this, instead of on
// every flush, so steady pipelining does not memmove per syscall.
constexpr std::size_t kCompactThreshold = 256 * 1024;

// Renders "ERR\tline-too-long\t<limit>\n" through a stack buffer: the
// rejection branch stays on the zero-allocation reply path (no
// std::to_string temporaries).
void append_line_too_long(std::string& out, std::size_t limit) {
  char buf[64];
  const int n =
      std::snprintf(buf, sizeof buf, "ERR\tline-too-long\t%zu\n", limit);
  if (n > 0) out.append(buf, static_cast<std::size_t>(n));
}
}  // namespace

Connection::Connection(Server& server, EventLoop& loop,
                       std::size_t loop_index, int fd)
    : server_(server),
      loop_(loop),
      loop_index_(loop_index),
      source_key_(SourceKey::from_fd(fd)),
      fd_(fd),
      last_active_(Clock::now()) {
  const ServerConfig& cfg = server_.config();
  burst_ = cfg.rate_burst > 0 ? cfg.rate_burst : std::max(cfg.rate_limit, 1.0);
  tokens_ = burst_;  // a fresh connection may burst to the bucket depth
  bucket_time_ = last_active_;
}

Connection::~Connection() {
  if (fd_ >= 0) ::close(fd_);
}

void Connection::start() {
  loop_.assert_in_loop();
  interest_ = EPOLLIN;
  loop_.add_fd(fd_, interest_, [this](std::uint32_t events) {
    loop_.assert_in_loop();
    on_events(events);
  });
}

void Connection::on_events(std::uint32_t events) {
  // bad_alloc anywhere on a connection's event path — buffer growth,
  // reply rendering, epoll bookkeeping — costs exactly this connection,
  // never the process. The buffers may be mid-update when the throw
  // unwinds, which is fine: the connection is discarded whole.
  try {
    if (const auto fp = BDRMAPIT_FAILPOINT("core.alloc")) throw std::bad_alloc();
    handle_events(events);
  } catch (const std::bad_alloc&) {
    server_.note_oom_closed();
    close();  // no-op if the body already closed before throwing
  }
}

void Connection::handle_events(std::uint32_t events) {
  if ((events & (EPOLLHUP | EPOLLERR)) != 0 && (events & EPOLLIN) == 0) {
    close();
    return;
  }
  if ((events & EPOLLIN) != 0) {
    on_readable();
    if (closed()) return;
  }
  if ((events & EPOLLOUT) != 0) pump();
}

void Connection::on_readable() {
  char buf[kReadChunk];
  for (;;) {
    ssize_t n;
    if (const auto fp = BDRMAPIT_FAILPOINT("net.read")) {
      errno = fp.err != 0 ? fp.err : ECONNRESET;
      n = -1;
    } else {
      n = ::recv(fd_, buf, sizeof buf, 0);
    }
    if (n > 0) {
      server_.note_bytes_in(static_cast<std::size_t>(n));
      rbuf_.append(buf, static_cast<std::size_t>(n));
      last_active_ = Clock::now();
      continue;
    }
    if (n == 0) {  // client finished its request stream; answer what is
      eof_ = true;  // buffered (possibly the whole session), then close
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    // ECONNRESET and friends: nothing left to flush usefully. Exactly
    // one counter bump per failed connection, then it is gone.
    server_.note_read_error();
    close();
    return;
  }
  pump();
}

bool Connection::take_token() {
  const double rate = server_.config().rate_limit;
  SourceLimiter& sources = server_.source_limiter();
  if (rate <= 0 && !sources.enabled()) return true;
  const Clock::time_point now = Clock::now();
  if (rate > 0) {
    tokens_ = std::min(
        burst_, tokens_ + rate * std::chrono::duration<double>(
                                     now - bucket_time_).count());
    bucket_time_ = now;
    if (tokens_ < 1.0) {
      server_.note_rate_limited();
      return false;
    }
    tokens_ -= 1.0;
  }
  if (!sources.take(source_key_, now)) {
    // The request is rejected: give the per-connection token back so
    // the two limits compose (each bucket only charges for dispatches).
    if (rate > 0) tokens_ = std::min(burst_, tokens_ + 1.0);
    server_.note_rate_limited();
    return false;
  }
  return true;
}

void Connection::refund_token() {
  if (server_.config().rate_limit > 0)
    tokens_ = std::min(burst_, tokens_ + 1.0);
  server_.source_limiter().refund(source_key_);
}

void Connection::process_input() {
  const bool binary = server_.binary_framing();
  const std::uint8_t magic = server_.config().binary_magic;
  while (!want_close_) {
    if (outbound() > server_.config().max_write_buffer) {
      paused_ = true;  // stop parsing until the client drains replies
      return;
    }
    if (rpos_ >= rbuf_.size()) break;

    if (binary && static_cast<std::uint8_t>(rbuf_[rpos_]) == magic) {
      if (!take_token()) {
        out_ += server_.config().rate_limited_frame;
        want_close_ = true;
        break;
      }
      const std::string_view buf(rbuf_.data() + rpos_, rbuf_.size() - rpos_);
      const FrameResult r = server_.dispatch_frame(buf, out_);
      if (r.status == FrameStatus::kNeedMore) {
        // Refund the tokens: the frame was not dispatched yet, and the
        // retry when its remaining bytes arrive will charge again.
        refund_token();
        if (eof_) want_close_ = true;  // truncated trailing frame
        break;
      }
      rpos_ += r.consumed;
      last_active_ = Clock::now();
      if (r.status == FrameStatus::kClose) {
        want_close_ = true;
        break;
      }
      continue;
    }

    const std::size_t nl = rbuf_.find('\n', rpos_);
    const std::size_t limit = server_.config().max_line_bytes;
    if (nl == std::string::npos) {
      if (rbuf_.size() - rpos_ > limit) {
        append_line_too_long(out_, limit);
        want_close_ = true;
        rbuf_.clear();
        rpos_ = 0;
      } else if (eof_ && rpos_ < rbuf_.size()) {
        // A final unterminated line: dispatch it, exactly as the stdin
        // REPL's getline delivers a stream with no trailing newline.
        if (!take_token()) {
          out_ += server_.config().rate_limited_line;
          want_close_ = true;
          break;
        }
        const std::string_view line(rbuf_.data() + rpos_,
                                    rbuf_.size() - rpos_);
        rpos_ = rbuf_.size();
        if (server_.dispatch(line, out_) == HandlerAction::kClose)
          want_close_ = true;
      }
      break;
    }
    if (nl - rpos_ > limit) {
      append_line_too_long(out_, limit);
      want_close_ = true;
      break;
    }
    if (!take_token()) {
      out_ += server_.config().rate_limited_line;
      want_close_ = true;
      break;
    }
    const std::string_view line(rbuf_.data() + rpos_, nl - rpos_);
    rpos_ = nl + 1;
    last_active_ = Clock::now();
    if (server_.dispatch(line, out_) == HandlerAction::kClose) {
      want_close_ = true;  // QUIT: any pipelined requests behind it drop
      break;
    }
  }
  if (rpos_ == rbuf_.size() || want_close_) {
    rbuf_.clear();
    rpos_ = 0;
  } else if (rpos_ > kCompactThreshold) {
    rbuf_.erase(0, rpos_);
    rpos_ = 0;
  }
}

void Connection::flush() {
  // One vectored write covers the already-queued prefix and this
  // pump's fresh replies; in steady state wbuf_ is empty and reply
  // bytes go from the render buffer to the kernel with no extra copy.
  std::size_t ooff = 0;
  while (woff_ < wbuf_.size() || ooff < out_.size()) {
    iovec iov[2];
    int iovcnt = 0;
    if (woff_ < wbuf_.size())
      iov[iovcnt++] = {wbuf_.data() + woff_, wbuf_.size() - woff_};
    if (ooff < out_.size())
      iov[iovcnt++] = {out_.data() + ooff, out_.size() - ooff};
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = static_cast<std::size_t>(iovcnt);
    ssize_t n;
    if (const auto fp = BDRMAPIT_FAILPOINT("net.sendmsg")) {
      errno = fp.err != 0 ? fp.err : EPIPE;
      n = -1;
    } else {
      n = ::sendmsg(fd_, &msg, MSG_NOSIGNAL);
    }
    if (n > 0) {
      server_.note_bytes_out(static_cast<std::size_t>(n));
      last_active_ = Clock::now();
      std::size_t left = static_cast<std::size_t>(n);
      const std::size_t from_wbuf = std::min(left, wbuf_.size() - woff_);
      woff_ += from_wbuf;
      ooff += left - from_wbuf;
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    // Peer gone (EPIPE/ECONNRESET) or the kernel refused the write:
    // replies are undeliverable, so close exactly this connection and
    // bump the counter exactly once.
    server_.note_write_error();
    close();
    return;
  }
  if (ooff < out_.size()) {
    // Backpressure: the socket did not take everything — queue the
    // unsent fresh bytes (the only copy on the reply path).
    wbuf_.append(out_, ooff, std::string::npos);
  }
  out_.clear();
  if (woff_ == wbuf_.size()) {
    wbuf_.clear();
    woff_ = 0;
  } else if (woff_ > kCompactThreshold) {
    wbuf_.erase(0, woff_);
    woff_ = 0;
  }
}

void Connection::pump() {
  for (;;) {
    process_input();
    flush();
    if (closed()) return;
    // eof_ alone closes too, but only once parsing is not paused — a
    // backpressured connection still owes replies for buffered input.
    if (want_close_ || (eof_ && !paused_)) {
      if (outbound() == 0) {
        close();
        return;
      }
      break;  // wait for EPOLLOUT to finish the flush
    }
    // Resume parsing once the client drained to the low-water mark;
    // buffered pipelined requests must not wait for new socket input.
    if (paused_ && outbound() <= server_.config().max_write_buffer / 2) {
      paused_ = false;
      continue;
    }
    break;
  }
  update_interest();
}

void Connection::update_interest() {
  std::uint32_t want = 0;
  if (!paused_ && !eof_ && !want_close_) want |= EPOLLIN;
  if (outbound() > 0) want |= EPOLLOUT;
  if (want != interest_) {
    loop_.mod_fd(fd_, want);
    interest_ = want;
  }
}

void Connection::begin_drain() {
  loop_.assert_in_loop();
  if (closed()) return;
  want_close_ = true;
  pump();
}

void Connection::check_idle(Clock::time_point now) {
  loop_.assert_in_loop();
  if (closed()) return;
  if (now - last_active_ >= server_.config().idle_timeout) close();
}

void Connection::close() {
  if (fd_ < 0) return;
  loop_.del_fd(fd_);
  ::close(fd_);
  fd_ = -1;
  server_.release(this, loop_index_);
}

}  // namespace net
