#include "net/connection.hpp"

#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>

#include "net/server.hpp"

namespace net {

namespace {
constexpr std::size_t kReadChunk = 64 * 1024;
// Compact wbuf_ once the written prefix crosses this, instead of on
// every flush, so steady pipelining does not memmove per syscall.
constexpr std::size_t kCompactThreshold = 256 * 1024;
}  // namespace

Connection::Connection(Server& server, EventLoop& loop,
                       std::size_t loop_index, int fd)
    : server_(server),
      loop_(loop),
      loop_index_(loop_index),
      fd_(fd),
      last_active_(Clock::now()) {}

Connection::~Connection() {
  if (fd_ >= 0) ::close(fd_);
}

void Connection::start() {
  interest_ = EPOLLIN;
  loop_.add_fd(fd_, interest_,
               [this](std::uint32_t events) { on_events(events); });
}

void Connection::on_events(std::uint32_t events) {
  if ((events & (EPOLLHUP | EPOLLERR)) != 0 && (events & EPOLLIN) == 0) {
    close();
    return;
  }
  if ((events & EPOLLIN) != 0) {
    on_readable();
    if (closed()) return;
  }
  if ((events & EPOLLOUT) != 0) pump();
}

void Connection::on_readable() {
  char buf[kReadChunk];
  for (;;) {
    const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
    if (n > 0) {
      server_.note_bytes_in(static_cast<std::size_t>(n));
      rbuf_.append(buf, static_cast<std::size_t>(n));
      last_active_ = Clock::now();
      continue;
    }
    if (n == 0) {  // client finished its request stream; answer what is
      eof_ = true;  // buffered (possibly the whole session), then close
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    close();  // ECONNRESET and friends: nothing left to flush usefully
    return;
  }
  pump();
}

void Connection::process_lines() {
  while (!want_close_) {
    if (outbound() > server_.config().max_write_buffer) {
      paused_ = true;  // stop parsing until the client drains replies
      return;
    }
    const std::size_t nl = rbuf_.find('\n', rpos_);
    const std::size_t limit = server_.config().max_line_bytes;
    if (nl == std::string::npos) {
      if (rbuf_.size() - rpos_ > limit) {
        wbuf_ += "ERR\tline-too-long\t" + std::to_string(limit) + "\n";
        want_close_ = true;
        rbuf_.clear();
        rpos_ = 0;
      } else if (eof_ && rpos_ < rbuf_.size()) {
        // A final unterminated line: dispatch it, exactly as the stdin
        // REPL's getline delivers a stream with no trailing newline.
        const std::string_view line(rbuf_.data() + rpos_,
                                    rbuf_.size() - rpos_);
        rpos_ = rbuf_.size();
        if (server_.dispatch(line, wbuf_) == HandlerAction::kClose)
          want_close_ = true;
      }
      break;
    }
    if (nl - rpos_ > limit) {
      wbuf_ += "ERR\tline-too-long\t" + std::to_string(limit) + "\n";
      want_close_ = true;
      break;
    }
    const std::string_view line(rbuf_.data() + rpos_, nl - rpos_);
    rpos_ = nl + 1;
    last_active_ = Clock::now();
    if (server_.dispatch(line, wbuf_) == HandlerAction::kClose) {
      want_close_ = true;  // QUIT: any pipelined requests behind it drop
      break;
    }
  }
  if (rpos_ == rbuf_.size() || want_close_) {
    rbuf_.clear();
    rpos_ = 0;
  } else if (rpos_ > kCompactThreshold) {
    rbuf_.erase(0, rpos_);
    rpos_ = 0;
  }
}

void Connection::flush() {
  while (woff_ < wbuf_.size()) {
    const ssize_t n = ::send(fd_, wbuf_.data() + woff_, wbuf_.size() - woff_,
                             MSG_NOSIGNAL);
    if (n > 0) {
      woff_ += static_cast<std::size_t>(n);
      server_.note_bytes_out(static_cast<std::size_t>(n));
      last_active_ = Clock::now();
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    close();  // peer gone; replies are undeliverable
    return;
  }
  if (woff_ == wbuf_.size()) {
    wbuf_.clear();
    woff_ = 0;
  } else if (woff_ > kCompactThreshold) {
    wbuf_.erase(0, woff_);
    woff_ = 0;
  }
}

void Connection::pump() {
  for (;;) {
    process_lines();
    flush();
    if (closed()) return;
    // eof_ alone closes too, but only once parsing is not paused — a
    // backpressured connection still owes replies for buffered input.
    if (want_close_ || (eof_ && !paused_)) {
      if (outbound() == 0) {
        close();
        return;
      }
      break;  // wait for EPOLLOUT to finish the flush
    }
    // Resume parsing once the client drained to the low-water mark;
    // buffered pipelined requests must not wait for new socket input.
    if (paused_ && outbound() <= server_.config().max_write_buffer / 2) {
      paused_ = false;
      continue;
    }
    break;
  }
  update_interest();
}

void Connection::update_interest() {
  std::uint32_t want = 0;
  if (!paused_ && !eof_ && !want_close_) want |= EPOLLIN;
  if (outbound() > 0) want |= EPOLLOUT;
  if (want != interest_) {
    loop_.mod_fd(fd_, want);
    interest_ = want;
  }
}

void Connection::begin_drain() {
  if (closed()) return;
  want_close_ = true;
  pump();
}

void Connection::check_idle(Clock::time_point now) {
  if (closed()) return;
  if (now - last_active_ >= server_.config().idle_timeout) close();
}

void Connection::close() {
  if (fd_ < 0) return;
  loop_.del_fd(fd_);
  ::close(fd_);
  fd_ = -1;
  server_.release(this, loop_index_);
}

}  // namespace net
