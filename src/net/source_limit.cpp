#include "net/source_limit.hpp"

#include <netinet/in.h>
#include <sys/socket.h>

#include <algorithm>
#include <cstring>

namespace net {

SourceKey SourceKey::from_fd(int fd) noexcept {
  SourceKey key;
  sockaddr_storage ss{};
  socklen_t len = sizeof ss;
  if (::getpeername(fd, reinterpret_cast<sockaddr*>(&ss), &len) != 0)
    return key;
  if (ss.ss_family == AF_INET) {
    const auto* sin = reinterpret_cast<const sockaddr_in*>(&ss);
    key.family = 4;
    std::memcpy(key.bytes.data(), &sin->sin_addr, 4);
  } else if (ss.ss_family == AF_INET6) {
    const auto* sin6 = reinterpret_cast<const sockaddr_in6*>(&ss);
    const auto* b = sin6->sin6_addr.s6_addr;
    // ::ffff:a.b.c.d — a v4 peer on a dual-stack listener; collapse so
    // the same host cannot straddle two buckets.
    static constexpr std::uint8_t kMappedPrefix[12] = {0, 0, 0, 0, 0, 0,
                                                       0, 0, 0, 0, 0xFF, 0xFF};
    if (std::memcmp(b, kMappedPrefix, sizeof kMappedPrefix) == 0) {
      key.family = 4;
      std::memcpy(key.bytes.data(), b + 12, 4);
    } else {
      key.family = 6;
      std::memcpy(key.bytes.data(), b, 16);
    }
  }
  return key;
}

std::size_t SourceKeyHash::operator()(const SourceKey& key) const noexcept {
  // FNV-1a over family + address bytes; cheap, no allocation.
  std::uint64_t h = 14695981039346656037ULL;
  const auto mix = [&h](std::uint8_t byte) {
    h ^= byte;
    h *= 1099511628211ULL;
  };
  mix(key.family);
  for (const std::uint8_t byte : key.bytes) mix(byte);
  return static_cast<std::size_t>(h);
}

SourceLimiter::SourceLimiter(double rate, double burst,
                             std::size_t max_sources) noexcept
    : rate_(rate),
      burst_(burst > 0 ? burst : std::max(rate, 1.0)),
      max_sources_(max_sources) {}

void SourceLimiter::evict_for_insert_locked(Clock::time_point now) {
  // First choice: buckets that have refilled to full. Evicting them is
  // free — a returning source gets an identical fresh-full bucket.
  bool freed = false;
  for (auto it = buckets_.begin(); it != buckets_.end();) {
    const double refilled = std::min(
        burst_, it->second.tokens + rate_ * std::chrono::duration<double>(
                                                now - it->second.refreshed)
                                                .count());
    if (refilled >= burst_) {
      it = buckets_.erase(it);
      freed = true;
    } else {
      ++it;
    }
  }
  if (freed) return;
  // Every tracked source is actively draining its bucket. Evict the
  // stalest — the least recently charged — which loses the least
  // rate-limiting state and matches what a prune would drop first.
  auto stalest = buckets_.begin();
  for (auto it = std::next(stalest); it != buckets_.end(); ++it)
    if (it->second.refreshed < stalest->second.refreshed) stalest = it;
  buckets_.erase(stalest);
}

bool SourceLimiter::take(const SourceKey& key, Clock::time_point now) {
  if (rate_ <= 0 || key.family == 0) return true;
  const core::MutexLock lock(mu_);
  if (max_sources_ > 0 && buckets_.size() >= max_sources_ &&
      buckets_.find(key) == buckets_.end())
    evict_for_insert_locked(now);
  auto [it, inserted] = buckets_.try_emplace(key);
  Bucket& bucket = it->second;
  if (inserted) {
    bucket.tokens = burst_;  // a fresh source may burst to the depth
  } else {
    bucket.tokens = std::min(
        burst_, bucket.tokens + rate_ * std::chrono::duration<double>(
                                            now - bucket.refreshed).count());
  }
  bucket.refreshed = now;
  if (bucket.tokens >= 1.0) {
    bucket.tokens -= 1.0;
    return true;
  }
  return false;
}

void SourceLimiter::refund(const SourceKey& key) {
  if (rate_ <= 0 || key.family == 0) return;
  const core::MutexLock lock(mu_);
  const auto it = buckets_.find(key);
  if (it != buckets_.end())
    it->second.tokens = std::min(burst_, it->second.tokens + 1.0);
}

void SourceLimiter::prune(Clock::time_point now) {
  if (rate_ <= 0) return;
  const core::MutexLock lock(mu_);
  for (auto it = buckets_.begin(); it != buckets_.end();) {
    const double refilled = std::min(
        burst_, it->second.tokens + rate_ * std::chrono::duration<double>(
                                                now - it->second.refreshed)
                                                .count());
    if (refilled >= burst_)
      it = buckets_.erase(it);  // idle source: recreated full on return
    else
      ++it;
  }
}

std::size_t SourceLimiter::size() const {
  const core::MutexLock lock(mu_);
  return buckets_.size();
}

}  // namespace net
