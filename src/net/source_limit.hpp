// net/source_limit.hpp — aggregate request rate limiting by peer IP.
//
// The per-connection token bucket (net/connection.cpp) bounds what one
// socket can demand, but a client that opens many connections gets a
// fresh bucket each time — the many-connections loophole. SourceLimiter
// closes it: one shared token bucket per *source address* (port
// excluded), charged by every connection from that address, on
// whichever event loop it lives. A request passes only if both its
// connection bucket and its source bucket have a token.
//
// Connections on different loops share buckets, so the map sits behind
// an annotated core::Mutex. The critical section is a hash lookup and
// a few float ops — far cheaper than the request dispatch it gates.
// Buckets are created full on first sight of an address and pruned
// once they refill to full (the acceptor loop's tick sweeps), so the
// map tracks only currently-active sources.
//
// The tracked-source count is additionally hard-capped (max_sources):
// an address-diverse abuser — many spoof-adjacent prefixes, or a
// botnet — must not grow the map without bound between prune sweeps.
// At the cap, admitting a new source first sweeps out every bucket
// that has refilled to full (free to evict: recreated full on return),
// and failing that evicts the stalest bucket — the one whose last
// take/refund is oldest. Eviction is O(n) but runs only at the cap.

#pragma once

#include <array>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <unordered_map>

#include "core/thread_annotations.hpp"

namespace net {

/// A peer's source address, normalized for keying: family 4 or 6 with
/// the address in network byte order (v4 in bytes 0-3, rest zero).
/// IPv4-mapped IPv6 peers (::ffff:a.b.c.d) collapse to their v4 form,
/// so dual-stack listeners cannot be split across two buckets.
struct SourceKey {
  std::uint8_t family = 0;
  std::array<std::uint8_t, 16> bytes{};

  bool operator==(const SourceKey& other) const noexcept {
    return family == other.family && bytes == other.bytes;
  }

  /// Builds the key from a connected socket's peer address via
  /// getpeername. family stays 0 (an always-passing key) if the fd has
  /// no IP peer (unexpected for accepted TCP sockets).
  static SourceKey from_fd(int fd) noexcept;
};

struct SourceKeyHash {
  std::size_t operator()(const SourceKey& key) const noexcept;
};

class SourceLimiter {
 public:
  using Clock = std::chrono::steady_clock;

  /// Default cap on distinct tracked sources (see max_sources).
  static constexpr std::size_t kDefaultMaxSources = 65536;

  /// rate: tokens/sec shared by every connection from one source;
  /// <= 0 disables the limiter. burst: bucket depth, <= 0 resolves to
  /// max(rate, 1) — the same convention as the per-connection bucket.
  /// max_sources: cap on distinct tracked addresses (0 = unbounded);
  /// at the cap the stalest full-or-oldest bucket is evicted.
  SourceLimiter(double rate, double burst,
                std::size_t max_sources = kDefaultMaxSources) noexcept;

  bool enabled() const noexcept { return rate_ > 0; }

  /// Takes one token from `key`'s bucket (created full on first
  /// sight). Returns false — without consuming anything — when the
  /// bucket is empty. Always true when disabled or key.family == 0.
  bool take(const SourceKey& key, Clock::time_point now)
      BDRMAPIT_EXCLUDES(mu_);

  /// Returns one token (a charged request that was not dispatched —
  /// the incomplete-frame retry path).
  void refund(const SourceKey& key) BDRMAPIT_EXCLUDES(mu_);

  /// Drops buckets that have refilled to full: idle sources cost no
  /// memory. Called from the acceptor loop's tick.
  void prune(Clock::time_point now) BDRMAPIT_EXCLUDES(mu_);

  /// Currently tracked sources (tests and introspection).
  std::size_t size() const BDRMAPIT_EXCLUDES(mu_);

 private:
  struct Bucket {
    double tokens = 0;
    Clock::time_point refreshed;
  };

  /// Makes room for one more bucket when the map sits at the cap:
  /// sweep refilled-to-full buckets first, else evict the stalest.
  void evict_for_insert_locked(Clock::time_point now) BDRMAPIT_REQUIRES(mu_);

  const double rate_;
  const double burst_;
  const std::size_t max_sources_;  ///< 0 = unbounded
  mutable core::Mutex mu_;
  std::unordered_map<SourceKey, Bucket, SourceKeyHash> buckets_
      BDRMAPIT_GUARDED_BY(mu_);
};

}  // namespace net
