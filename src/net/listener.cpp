#include "net/listener.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>

#include "core/errno_util.hpp"
#include "core/failpoint.hpp"

namespace net {

std::unique_ptr<Listener> Listener::open(const std::string& host,
                                         std::uint16_t port,
                                         std::string* error) {
  sockaddr_storage addr{};
  socklen_t addr_len = 0;
  int family = AF_UNSPEC;

  in_addr v4{};
  in6_addr v6{};
  if (::inet_pton(AF_INET, host.c_str(), &v4) == 1) {
    auto* sa = reinterpret_cast<sockaddr_in*>(&addr);
    sa->sin_family = AF_INET;
    sa->sin_addr = v4;
    sa->sin_port = htons(port);
    addr_len = sizeof(sockaddr_in);
    family = AF_INET;
  } else if (::inet_pton(AF_INET6, host.c_str(), &v6) == 1) {
    auto* sa = reinterpret_cast<sockaddr_in6*>(&addr);
    sa->sin6_family = AF_INET6;
    sa->sin6_addr = v6;
    sa->sin6_port = htons(port);
    addr_len = sizeof(sockaddr_in6);
    family = AF_INET6;
  } else {
    if (error) *error = "malformed listen address '" + host + "'";
    return nullptr;
  }

  const int fd =
      ::socket(family, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    if (error) *error = "socket: " + core::errno_string();
    return nullptr;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), addr_len) != 0) {
    if (error)
      *error = "bind " + host + ":" + std::to_string(port) + ": " +
               core::errno_string();
    ::close(fd);
    return nullptr;
  }
  if (::listen(fd, SOMAXCONN) != 0) {
    if (error) *error = "listen: " + core::errno_string();
    ::close(fd);
    return nullptr;
  }

  // Recover the kernel's port choice when the caller asked for port 0.
  std::uint16_t bound = port;
  sockaddr_storage local{};
  socklen_t local_len = sizeof local;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&local), &local_len) == 0) {
    if (local.ss_family == AF_INET)
      bound = ntohs(reinterpret_cast<const sockaddr_in*>(&local)->sin_port);
    else if (local.ss_family == AF_INET6)
      bound = ntohs(reinterpret_cast<const sockaddr_in6*>(&local)->sin6_port);
  }

  // The spare descriptor backing the EMFILE shed trick. Failing to
  // open it is not fatal — the listener merely loses the explicit-
  // refusal behavior under fd exhaustion.
  const int spare = ::open("/dev/null", O_RDONLY | O_CLOEXEC);

  return std::unique_ptr<Listener>(new Listener(fd, bound, spare));
}

Listener::~Listener() {
  if (spare_fd_ >= 0) ::close(spare_fd_);
  if (fd_ >= 0) ::close(fd_);
}

void Listener::shed_one_pending() noexcept {
  if (spare_fd_ >= 0) {
    ::close(spare_fd_);
    spare_fd_ = -1;
  }
  // With the spare's slot free this accept can succeed where the
  // caller's just failed; closing immediately turns a connection that
  // would rot in the backlog into a prompt EOF at the client.
  const int cfd =
      ::accept4(fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
  if (cfd >= 0) ::close(cfd);
  spare_fd_ = ::open("/dev/null", O_RDONLY | O_CLOEXEC);
}

int Listener::accept_one(AcceptStatus* status) noexcept {
  for (;;) {
    int cfd;
    if (const auto fp = BDRMAPIT_FAILPOINT("net.accept")) {
      errno = fp.err != 0 ? fp.err : EMFILE;
      cfd = -1;
    } else {
      cfd = ::accept4(fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    }
    if (cfd >= 0) {
      const int one = 1;
      ::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      *status = AcceptStatus::kOk;
      return cfd;
    }
    switch (errno) {
      case EINTR:
        continue;
      case EAGAIN:
#if EAGAIN != EWOULDBLOCK
      case EWOULDBLOCK:
#endif
        *status = AcceptStatus::kExhausted;
        return -1;
      // The peer aborted between SYN and accept — its failure, not
      // ours; move on to the next pending connection.
      case ECONNABORTED:
      case EPROTO:
      case EPERM:
        continue;
      // Out of descriptors (process or system wide) or kernel memory:
      // shed one pending connection through the reserved slot so the
      // backlog drains visibly, and tell the caller to back off.
      case EMFILE:
      case ENFILE:
      case ENOBUFS:
      case ENOMEM:
        shed_one_pending();
        *status = AcceptStatus::kFdLimit;
        return -1;
      default:
        *status = AcceptStatus::kTransient;
        return -1;
    }
  }
}

}  // namespace net
