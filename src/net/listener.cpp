#include "net/listener.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace net {

namespace {

std::string errno_string() { return std::strerror(errno); }

}  // namespace

std::unique_ptr<Listener> Listener::open(const std::string& host,
                                         std::uint16_t port,
                                         std::string* error) {
  sockaddr_storage addr{};
  socklen_t addr_len = 0;
  int family = AF_UNSPEC;

  in_addr v4{};
  in6_addr v6{};
  if (::inet_pton(AF_INET, host.c_str(), &v4) == 1) {
    auto* sa = reinterpret_cast<sockaddr_in*>(&addr);
    sa->sin_family = AF_INET;
    sa->sin_addr = v4;
    sa->sin_port = htons(port);
    addr_len = sizeof(sockaddr_in);
    family = AF_INET;
  } else if (::inet_pton(AF_INET6, host.c_str(), &v6) == 1) {
    auto* sa = reinterpret_cast<sockaddr_in6*>(&addr);
    sa->sin6_family = AF_INET6;
    sa->sin6_addr = v6;
    sa->sin6_port = htons(port);
    addr_len = sizeof(sockaddr_in6);
    family = AF_INET6;
  } else {
    if (error) *error = "malformed listen address '" + host + "'";
    return nullptr;
  }

  const int fd =
      ::socket(family, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    if (error) *error = "socket: " + errno_string();
    return nullptr;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), addr_len) != 0) {
    if (error)
      *error = "bind " + host + ":" + std::to_string(port) + ": " +
               errno_string();
    ::close(fd);
    return nullptr;
  }
  if (::listen(fd, SOMAXCONN) != 0) {
    if (error) *error = "listen: " + errno_string();
    ::close(fd);
    return nullptr;
  }

  // Recover the kernel's port choice when the caller asked for port 0.
  std::uint16_t bound = port;
  sockaddr_storage local{};
  socklen_t local_len = sizeof local;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&local), &local_len) == 0) {
    if (local.ss_family == AF_INET)
      bound = ntohs(reinterpret_cast<const sockaddr_in*>(&local)->sin_port);
    else if (local.ss_family == AF_INET6)
      bound = ntohs(reinterpret_cast<const sockaddr_in6*>(&local)->sin6_port);
  }

  return std::unique_ptr<Listener>(new Listener(fd, bound));
}

Listener::~Listener() {
  if (fd_ >= 0) ::close(fd_);
}

int Listener::accept_one(bool* exhausted) noexcept {
  *exhausted = false;
  for (;;) {
    const int cfd = ::accept4(fd_, nullptr, nullptr,
                              SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (cfd >= 0) {
      const int one = 1;
      ::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      return cfd;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) *exhausted = true;
    return -1;
  }
}

}  // namespace net
