// graph/graph.hpp — Phase 1: the annotated IR graph (paper §4).
//
// From a traceroute corpus, alias sets, and an IP→AS map, Graph::build
// constructs exactly the structure bdrmapIT's phases 2 and 3 operate on:
//
//   * interfaces — one per distinct, non-private reply address, labeled
//     with its origin AS (longest-prefix match; IXP prefixes special);
//   * IRs (inferred routers) — alias groups of observed interfaces,
//     singletons for unresolved addresses;
//   * links — IR → subsequent interface edges with N/E/M confidence
//     labels (Table 3), keeping only the highest-confidence label seen;
//   * link origin AS sets L(IRi, j) (§4.3) and link destination AS sets
//     (used by the third-party test, §6.1.1);
//   * interface and IR destination AS sets with the reallocated-prefix
//     correction (§4.4).
//
// Private hops are treated as gaps: a link across them is Multihop
// unless the flanking origin ASes agree. Hop distance comes from probe
// TTL differences, so unresponsive hops widen distance the same way.

#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "asrel/relstore.hpp"
#include "bgp/ip2as.hpp"
#include "netbase/asn.hpp"
#include "netbase/ip_addr.hpp"
#include "tracedata/alias.hpp"
#include "tracedata/traceroute.hpp"

namespace graph {

/// Link confidence labels, Table 3. Lower value = higher confidence.
enum class LinkLabel : std::uint8_t { nexthop = 1, echo = 2, multihop = 3 };

struct Interface {
  int id = -1;
  netbase::IPAddr addr;
  bgp::Origin origin;
  int ir = -1;
  /// Dynamic annotation: the AS on the *other side* of this interface's
  /// link (Fig. 3). Initialized to the origin AS before refinement.
  netbase::Asn annotation = netbase::kNoAs;
  bool seen_non_echo = false;  ///< ever replied Time Exceeded / Unreachable
  bool seen_mid_path = false;  ///< ever observed before the final hop
  std::vector<netbase::Asn> dest_asns;  ///< §4.4, deduped, order of first sight
  std::vector<int> in_links;   ///< link ids with this interface subsequent
};

struct Link {
  int id = -1;
  int ir = -1;     ///< source IR
  int iface = -1;  ///< subsequent interface
  LinkLabel label = LinkLabel::multihop;
  std::vector<netbase::Asn> origin_set;  ///< L(IRi, j), §4.3
  std::vector<netbase::Asn> dest_asns;   ///< destinations crossing this link
  /// §6.2 votes: the source IR's interfaces seen immediately prior to
  /// `iface` on this link.
  std::unordered_set<int> prev_ifaces;
};

struct IR {
  int id = -1;
  std::vector<int> ifaces;
  std::vector<int> out_links;
  std::vector<netbase::Asn> origin_set;  ///< distinct announced iface origins
  std::unordered_map<netbase::Asn, int> origin_votes;  ///< iface count per origin
  std::vector<netbase::Asn> dest_asns;   ///< §4.4 (post reallocation fix)
  netbase::Asn annotation = netbase::kNoAs;  ///< inferred operator
  bool last_hop = false;  ///< no outgoing links → phase-2 annotated, frozen
};

/// Aggregate statistics for the Table 3 population numbers.
struct GraphStats {
  std::size_t links_nexthop = 0;
  std::size_t links_echo = 0;
  std::size_t links_multihop = 0;
  std::size_t irs_with_links = 0;
  std::size_t irs_echo_only_links = 0;  ///< E links but no N links
  std::size_t interfaces = 0;
  std::size_t interfaces_mapped = 0;  ///< origin found in BGP/RIR/IXP
  std::size_t irs = 0;
  std::size_t last_hop_irs = 0;
  std::size_t last_hop_irs_empty_dest = 0;
};

class Graph {
 public:
  /// Builds the annotated IR graph. `rels` feeds the §4.4 reallocated-
  /// prefix correction (customer-cone sizes); pass a finalized store.
  ///
  /// `threads` bounds the executors used for the two corpus passes
  /// (<= 0 means hardware concurrency). The corpus is sharded and the
  /// per-shard partial graphs merged in shard order, which reproduces
  /// the serial first-seen interning order exactly: the result is
  /// identical — same ids, same set orders — for every thread count.
  static Graph build(const std::vector<tracedata::Traceroute>& corpus,
                     const tracedata::AliasSets& aliases, const bgp::Ip2AS& ip2as,
                     const asrel::RelStore& rels, int threads = 1);

  std::vector<Interface>& interfaces() noexcept { return ifaces_; }
  const std::vector<Interface>& interfaces() const noexcept { return ifaces_; }
  std::vector<IR>& irs() noexcept { return irs_; }
  const std::vector<IR>& irs() const noexcept { return irs_; }
  std::vector<Link>& links() noexcept { return links_; }
  const std::vector<Link>& links() const noexcept { return links_; }

  int iface_by_addr(const netbase::IPAddr& a) const noexcept {
    auto it = addr_index_.find(a);
    return it == addr_index_.end() ? -1 : it->second;
  }

  GraphStats stats() const;

 private:
  std::vector<Interface> ifaces_;
  std::vector<IR> irs_;
  std::vector<Link> links_;
  std::unordered_map<netbase::IPAddr, int> addr_index_;
};

/// Inserts `v` if absent (small ordered-by-first-sight set semantics).
inline void set_insert(std::vector<netbase::Asn>& set, netbase::Asn v) {
  for (netbase::Asn x : set)
    if (x == v) return;
  set.push_back(v);
}

inline bool set_contains(const std::vector<netbase::Asn>& set, netbase::Asn v) noexcept {
  for (netbase::Asn x : set)
    if (x == v) return true;
  return false;
}

}  // namespace graph
