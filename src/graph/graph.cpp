#include "graph/graph.hpp"

#include <algorithm>

namespace graph {
namespace {

/// Table 3 label for the edge i -> j.
LinkLabel classify(const Interface& i, const Interface& j, int hop_distance,
                   tracedata::ReplyType j_reply) {
  if (j_reply == tracedata::ReplyType::echo_reply)
    return hop_distance == 1 ? LinkLabel::echo : LinkLabel::multihop;
  const bool same_origin = i.origin.announced() && j.origin.announced() &&
                           i.origin.asn == j.origin.asn;
  if (same_origin || hop_distance == 1) return LinkLabel::nexthop;
  return LinkLabel::multihop;
}

}  // namespace

Graph Graph::build(const std::vector<tracedata::Traceroute>& corpus,
                   const tracedata::AliasSets& aliases, const bgp::Ip2AS& ip2as,
                   const asrel::RelStore& rels) {
  Graph g;

  // ---- Pass A: interfaces ---------------------------------------------
  auto intern = [&](const netbase::IPAddr& addr) -> int {
    auto [it, inserted] = g.addr_index_.emplace(addr, static_cast<int>(g.ifaces_.size()));
    if (inserted) {
      Interface f;
      f.id = it->second;
      f.addr = addr;
      f.origin = ip2as.lookup(addr);
      g.ifaces_.push_back(std::move(f));
    }
    return it->second;
  };

  for (const auto& t : corpus) {
    for (std::size_t k = 0; k < t.hops.size(); ++k) {
      const auto& h = t.hops[k];
      if (h.addr.is_private()) continue;
      Interface& f = g.ifaces_[static_cast<std::size_t>(intern(h.addr))];
      if (h.reply != tracedata::ReplyType::echo_reply) f.seen_non_echo = true;
      if (k + 1 < t.hops.size()) f.seen_mid_path = true;
    }
  }

  // ---- IR assignment: alias groups, then singletons --------------------
  std::unordered_map<std::size_t, int> alias_ir;  // alias set id -> IR id
  auto ir_for = [&](Interface& f) {
    if (f.ir >= 0) return f.ir;
    const std::size_t set = aliases.find(f.addr);
    if (set != tracedata::AliasSets::npos) {
      auto [it, inserted] = alias_ir.emplace(set, static_cast<int>(g.irs_.size()));
      if (inserted) {
        IR ir;
        ir.id = it->second;
        g.irs_.push_back(std::move(ir));
      }
      f.ir = it->second;
    } else {
      f.ir = static_cast<int>(g.irs_.size());
      IR ir;
      ir.id = f.ir;
      g.irs_.push_back(std::move(ir));
    }
    g.irs_[static_cast<std::size_t>(f.ir)].ifaces.push_back(f.id);
    return f.ir;
  };
  for (auto& f : g.ifaces_) ir_for(f);

  // ---- Pass B: links, origin AS sets, destination AS sets --------------
  std::unordered_map<std::uint64_t, int> link_index;  // (ir, iface) -> link id
  auto link_for = [&](int ir, int iface) -> Link& {
    const std::uint64_t key =
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(ir)) << 32) |
        static_cast<std::uint32_t>(iface);
    auto [it, inserted] = link_index.emplace(key, static_cast<int>(g.links_.size()));
    if (inserted) {
      Link l;
      l.id = it->second;
      l.ir = ir;
      l.iface = iface;
      g.links_.push_back(std::move(l));
      g.irs_[static_cast<std::size_t>(ir)].out_links.push_back(it->second);
      g.ifaces_[static_cast<std::size_t>(iface)].in_links.push_back(it->second);
    }
    return g.links_[static_cast<std::size_t>(it->second)];
  };

  for (const auto& t : corpus) {
    const bgp::Origin dst_origin = ip2as.lookup(t.dst);
    const netbase::Asn dest_asn = dst_origin.announced() ? dst_origin.asn : netbase::kNoAs;

    // Responsive, non-private hops in order.
    std::vector<std::size_t> idx;
    for (std::size_t k = 0; k < t.hops.size(); ++k)
      if (!t.hops[k].addr.is_private()) idx.push_back(k);
    if (idx.empty()) continue;

    // Interface destination AS sets (§4.4); skip the final hop when the
    // traceroute ended in an Echo Reply.
    if (dest_asn != netbase::kNoAs) {
      for (std::size_t n = 0; n < idx.size(); ++n) {
        const auto& h = t.hops[idx[n]];
        if (n + 1 == idx.size() && h.reply == tracedata::ReplyType::echo_reply)
          continue;
        Interface& f = g.ifaces_[static_cast<std::size_t>(g.addr_index_.at(h.addr))];
        set_insert(f.dest_asns, dest_asn);
      }
    }

    for (std::size_t n = 0; n + 1 < idx.size(); ++n) {
      const auto& hi = t.hops[idx[n]];
      const auto& hj = t.hops[idx[n + 1]];
      Interface& fi = g.ifaces_[static_cast<std::size_t>(g.addr_index_.at(hi.addr))];
      Interface& fj = g.ifaces_[static_cast<std::size_t>(g.addr_index_.at(hj.addr))];
      if (fi.ir == fj.ir) continue;  // alias-internal transition: not a link

      Link& l = link_for(fi.ir, fj.id);
      const int dist = hj.probe_ttl - hi.probe_ttl;
      const LinkLabel label = classify(fi, fj, dist, hj.reply);
      if (static_cast<std::uint8_t>(label) < static_cast<std::uint8_t>(l.label))
        l.label = label;
      if (fi.origin.announced()) set_insert(l.origin_set, fi.origin.asn);
      if (dest_asn != netbase::kNoAs) set_insert(l.dest_asns, dest_asn);
      l.prev_ifaces.insert(fi.id);
    }
  }

  // ---- §4.4: reallocated-prefix correction on interface dest sets ------
  for (auto& f : g.ifaces_) {
    if (f.dest_asns.size() != 2 || !f.origin.announced()) continue;
    netbase::Asn matching = netbase::kNoAs, other = netbase::kNoAs;
    if (f.dest_asns[0] == f.origin.asn) {
      matching = f.dest_asns[0];
      other = f.dest_asns[1];
    } else if (f.dest_asns[1] == f.origin.asn) {
      matching = f.dest_asns[1];
      other = f.dest_asns[0];
    } else {
      continue;
    }
    if (rels.cone_size(other) > 5) continue;
    if (rels.has_relationship(matching, other)) continue;
    // Aggregation hid the relationship: drop the reallocating provider
    // (the AS with the larger customer cone).
    const netbase::Asn drop =
        rels.cone_size(matching) >= rels.cone_size(other) ? matching : other;
    f.dest_asns.erase(std::find(f.dest_asns.begin(), f.dest_asns.end(), drop));
  }

  // ---- IR aggregates ----------------------------------------------------
  for (auto& ir : g.irs_) {
    for (int fid : ir.ifaces) {
      const Interface& f = g.ifaces_[static_cast<std::size_t>(fid)];
      if (f.origin.announced()) {
        set_insert(ir.origin_set, f.origin.asn);
        ++ir.origin_votes[f.origin.asn];
      }
      for (netbase::Asn d : f.dest_asns) set_insert(ir.dest_asns, d);
    }
    ir.last_hop = ir.out_links.empty();
  }
  return g;
}

GraphStats Graph::stats() const {
  GraphStats s;
  s.interfaces = ifaces_.size();
  for (const auto& f : ifaces_)
    if (f.origin.kind != bgp::OriginKind::none &&
        f.origin.kind != bgp::OriginKind::private_addr)
      ++s.interfaces_mapped;
  s.irs = irs_.size();
  for (const auto& l : links_) {
    switch (l.label) {
      case LinkLabel::nexthop: ++s.links_nexthop; break;
      case LinkLabel::echo: ++s.links_echo; break;
      case LinkLabel::multihop: ++s.links_multihop; break;
    }
  }
  for (const auto& ir : irs_) {
    if (ir.last_hop) {
      ++s.last_hop_irs;
      if (ir.dest_asns.empty()) ++s.last_hop_irs_empty_dest;
      continue;
    }
    ++s.irs_with_links;
    bool has_n = false, has_e = false;
    for (int lid : ir.out_links) {
      const LinkLabel lab = links_[static_cast<std::size_t>(lid)].label;
      has_n |= lab == LinkLabel::nexthop;
      has_e |= lab == LinkLabel::echo;
    }
    if (has_e && !has_n) ++s.irs_echo_only_links;
  }
  return s;
}

}  // namespace graph
