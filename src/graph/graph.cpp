#include "graph/graph.hpp"

#include <algorithm>

#include "parallel/thread_pool.hpp"

namespace graph {
namespace {

/// Table 3 label for the edge i -> j.
LinkLabel classify(const Interface& i, const Interface& j, int hop_distance,
                   tracedata::ReplyType j_reply) {
  if (j_reply == tracedata::ReplyType::echo_reply)
    return hop_distance == 1 ? LinkLabel::echo : LinkLabel::multihop;
  const bool same_origin = i.origin.announced() && j.origin.announced() &&
                           i.origin.asn == j.origin.asn;
  if (same_origin || hop_distance == 1) return LinkLabel::nexthop;
  return LinkLabel::multihop;
}

constexpr std::uint8_t kSeenNonEcho = 1;
constexpr std::uint8_t kSeenMidPath = 2;

/// Pass A partial state for one corpus shard: the distinct non-private
/// addresses in shard-local first-seen order, each with its origin
/// lookup and observation flags.
struct ShardIfaces {
  std::unordered_map<netbase::IPAddr, int> index;  ///< addr -> local id
  std::vector<netbase::IPAddr> addrs;              ///< local first-seen order
  std::vector<bgp::Origin> origins;
  std::vector<std::uint8_t> flags;
};

/// Pass B partial state for one corpus shard: links keyed by global
/// (ir, iface) in shard-local first-seen order, plus the per-interface
/// destination AS insertions, all with serial set_insert semantics.
struct ShardLinks {
  struct PLink {
    int ir = -1;
    int iface = -1;
    LinkLabel label = LinkLabel::multihop;
    std::vector<netbase::Asn> origin_set;
    std::vector<netbase::Asn> dest_asns;
    std::vector<int> prev_ifaces;  ///< deduped
  };
  std::unordered_map<std::uint64_t, int> index;  ///< link key -> local id
  std::vector<PLink> links;                      ///< local first-seen order
  std::unordered_map<int, std::vector<netbase::Asn>> iface_dest;
  /// Memoized destination-origin lookups (§4.4): one trie walk per
  /// distinct destination per shard instead of one per traceroute.
  std::unordered_map<netbase::IPAddr, netbase::Asn> dst_cache;
};

inline std::uint64_t link_key(int ir, int iface) noexcept {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(ir)) << 32) |
         static_cast<std::uint32_t>(iface);
}

}  // namespace

Graph Graph::build(const std::vector<tracedata::Traceroute>& corpus,
                   const tracedata::AliasSets& aliases, const bgp::Ip2AS& ip2as,
                   const asrel::RelStore& rels, int threads) {
  Graph g;
  const std::size_t n_shards = parallel::shard_count(corpus.size(), threads);

  // ---- Pass A: interfaces (sharded) ------------------------------------
  // Each shard interns the addresses of a contiguous corpus slice.
  // Merging the shards' first-seen sequences in shard order reproduces
  // the serial interning order exactly, so interface ids are identical
  // for every thread count.
  std::vector<ShardIfaces> iface_shards(n_shards);
  parallel::parallel_shards(
      corpus.size(), static_cast<int>(n_shards),
      [&](std::size_t s, std::size_t lo, std::size_t hi) {
        ShardIfaces& sh = iface_shards[s];
        for (std::size_t ti = lo; ti < hi; ++ti) {
          const auto& t = corpus[ti];
          for (std::size_t k = 0; k < t.hops.size(); ++k) {
            const auto& h = t.hops[k];
            if (h.addr.is_private()) continue;
            auto [it, inserted] =
                sh.index.emplace(h.addr, static_cast<int>(sh.addrs.size()));
            if (inserted) {
              sh.addrs.push_back(h.addr);
              sh.origins.push_back(ip2as.lookup(h.addr));
              sh.flags.push_back(0);
            }
            std::uint8_t& fl = sh.flags[static_cast<std::size_t>(it->second)];
            if (h.reply != tracedata::ReplyType::echo_reply) fl |= kSeenNonEcho;
            if (k + 1 < t.hops.size()) fl |= kSeenMidPath;
          }
        }
      });
  for (const ShardIfaces& sh : iface_shards) {
    for (std::size_t li = 0; li < sh.addrs.size(); ++li) {
      auto [it, inserted] =
          g.addr_index_.emplace(sh.addrs[li], static_cast<int>(g.ifaces_.size()));
      if (inserted) {
        Interface f;
        f.id = it->second;
        f.addr = sh.addrs[li];
        f.origin = sh.origins[li];
        g.ifaces_.push_back(std::move(f));
      }
      Interface& f = g.ifaces_[static_cast<std::size_t>(it->second)];
      if (sh.flags[li] & kSeenNonEcho) f.seen_non_echo = true;
      if (sh.flags[li] & kSeenMidPath) f.seen_mid_path = true;
    }
  }

  // ---- IR assignment: alias groups, then singletons --------------------
  std::unordered_map<std::size_t, int> alias_ir;  // alias set id -> IR id
  auto ir_for = [&](Interface& f) {
    if (f.ir >= 0) return f.ir;
    const std::size_t set = aliases.find(f.addr);
    if (set != tracedata::AliasSets::npos) {
      auto [it, inserted] = alias_ir.emplace(set, static_cast<int>(g.irs_.size()));
      if (inserted) {
        IR ir;
        ir.id = it->second;
        g.irs_.push_back(std::move(ir));
      }
      f.ir = it->second;
    } else {
      f.ir = static_cast<int>(g.irs_.size());
      IR ir;
      ir.id = f.ir;
      g.irs_.push_back(std::move(ir));
    }
    g.irs_[static_cast<std::size_t>(f.ir)].ifaces.push_back(f.id);
    return f.ir;
  };
  for (auto& f : g.ifaces_) ir_for(f);

  // ---- Pass B: links, origin AS sets, destination AS sets (sharded) ----
  // Shards read the now-frozen interface table and accumulate partial
  // link state; the merge walks shards in order with serial set_insert
  // semantics, so link ids and every AS-set order match the serial
  // corpus-order build exactly.
  std::vector<ShardLinks> link_shards(n_shards);
  parallel::parallel_shards(
      corpus.size(), static_cast<int>(n_shards),
      [&](std::size_t s, std::size_t lo, std::size_t hi_end) {
        ShardLinks& sh = link_shards[s];
        // Hoisted per-traceroute scratch: hop indices of responsive
        // non-private hops, and their interned interface ids (one
        // addr_index_ hash per hop, not one per use).
        std::vector<std::size_t> idx;
        std::vector<int> ids;
        for (std::size_t ti = lo; ti < hi_end; ++ti) {
          const auto& t = corpus[ti];
          netbase::Asn dest_asn;
          if (auto dit = sh.dst_cache.find(t.dst); dit != sh.dst_cache.end()) {
            dest_asn = dit->second;
          } else {
            const bgp::Origin dst_origin = ip2as.lookup(t.dst);
            dest_asn = dst_origin.announced() ? dst_origin.asn : netbase::kNoAs;
            sh.dst_cache.emplace(t.dst, dest_asn);
          }

          idx.clear();
          ids.clear();
          for (std::size_t k = 0; k < t.hops.size(); ++k)
            if (!t.hops[k].addr.is_private()) {
              idx.push_back(k);
              ids.push_back(g.addr_index_.at(t.hops[k].addr));
            }
          if (idx.empty()) continue;

          // Interface destination AS sets (§4.4); skip the final hop
          // when the traceroute ended in an Echo Reply.
          if (dest_asn != netbase::kNoAs) {
            for (std::size_t n = 0; n < idx.size(); ++n) {
              const auto& h = t.hops[idx[n]];
              if (n + 1 == idx.size() && h.reply == tracedata::ReplyType::echo_reply)
                continue;
              set_insert(sh.iface_dest[ids[n]], dest_asn);
            }
          }

          for (std::size_t n = 0; n + 1 < idx.size(); ++n) {
            const auto& hj = t.hops[idx[n + 1]];
            const Interface& fi = g.ifaces_[static_cast<std::size_t>(ids[n])];
            const Interface& fj = g.ifaces_[static_cast<std::size_t>(ids[n + 1])];
            if (fi.ir == fj.ir) continue;  // alias-internal transition: not a link

            auto [it, inserted] = sh.index.emplace(link_key(fi.ir, fj.id),
                                                   static_cast<int>(sh.links.size()));
            if (inserted) {
              ShardLinks::PLink pl;
              pl.ir = fi.ir;
              pl.iface = fj.id;
              sh.links.push_back(std::move(pl));
            }
            ShardLinks::PLink& l = sh.links[static_cast<std::size_t>(it->second)];
            const int dist = hj.probe_ttl - t.hops[idx[n]].probe_ttl;
            const LinkLabel label = classify(fi, fj, dist, hj.reply);
            if (static_cast<std::uint8_t>(label) < static_cast<std::uint8_t>(l.label))
              l.label = label;
            if (fi.origin.announced()) set_insert(l.origin_set, fi.origin.asn);
            if (dest_asn != netbase::kNoAs) set_insert(l.dest_asns, dest_asn);
            if (std::find(l.prev_ifaces.begin(), l.prev_ifaces.end(), fi.id) ==
                l.prev_ifaces.end())
              l.prev_ifaces.push_back(fi.id);
          }
        }
      });

  std::unordered_map<std::uint64_t, int> link_index;  // (ir, iface) -> link id
  for (const ShardLinks& sh : link_shards) {
    for (const ShardLinks::PLink& pl : sh.links) {
      auto [it, inserted] = link_index.emplace(link_key(pl.ir, pl.iface),
                                               static_cast<int>(g.links_.size()));
      if (inserted) {
        Link l;
        l.id = it->second;
        l.ir = pl.ir;
        l.iface = pl.iface;
        g.links_.push_back(std::move(l));
        g.irs_[static_cast<std::size_t>(pl.ir)].out_links.push_back(it->second);
        g.ifaces_[static_cast<std::size_t>(pl.iface)].in_links.push_back(it->second);
      }
      Link& l = g.links_[static_cast<std::size_t>(it->second)];
      if (static_cast<std::uint8_t>(pl.label) < static_cast<std::uint8_t>(l.label))
        l.label = pl.label;
      for (netbase::Asn o : pl.origin_set) set_insert(l.origin_set, o);
      for (netbase::Asn d : pl.dest_asns) set_insert(l.dest_asns, d);
      l.prev_ifaces.insert(pl.prev_ifaces.begin(), pl.prev_ifaces.end());
    }
    for (const auto& [fid, dests] : sh.iface_dest) {
      Interface& f = g.ifaces_[static_cast<std::size_t>(fid)];
      for (netbase::Asn d : dests) set_insert(f.dest_asns, d);
    }
  }

  // ---- §4.4: reallocated-prefix correction on interface dest sets ------
  for (auto& f : g.ifaces_) {
    if (f.dest_asns.size() != 2 || !f.origin.announced()) continue;
    netbase::Asn matching = netbase::kNoAs, other = netbase::kNoAs;
    if (f.dest_asns[0] == f.origin.asn) {
      matching = f.dest_asns[0];
      other = f.dest_asns[1];
    } else if (f.dest_asns[1] == f.origin.asn) {
      matching = f.dest_asns[1];
      other = f.dest_asns[0];
    } else {
      continue;
    }
    if (rels.cone_size(other) > 5) continue;
    if (rels.has_relationship(matching, other)) continue;
    // Aggregation hid the relationship: drop the reallocating provider
    // (the AS with the larger customer cone).
    const netbase::Asn drop =
        rels.cone_size(matching) >= rels.cone_size(other) ? matching : other;
    f.dest_asns.erase(std::find(f.dest_asns.begin(), f.dest_asns.end(), drop));
  }

  // ---- IR aggregates ----------------------------------------------------
  for (auto& ir : g.irs_) {
    for (int fid : ir.ifaces) {
      const Interface& f = g.ifaces_[static_cast<std::size_t>(fid)];
      if (f.origin.announced()) {
        set_insert(ir.origin_set, f.origin.asn);
        ++ir.origin_votes[f.origin.asn];
      }
      for (netbase::Asn d : f.dest_asns) set_insert(ir.dest_asns, d);
    }
    ir.last_hop = ir.out_links.empty();
  }
  return g;
}

GraphStats Graph::stats() const {
  GraphStats s;
  s.interfaces = ifaces_.size();
  for (const auto& f : ifaces_)
    if (f.origin.kind != bgp::OriginKind::none &&
        f.origin.kind != bgp::OriginKind::private_addr)
      ++s.interfaces_mapped;
  s.irs = irs_.size();
  for (const auto& l : links_) {
    switch (l.label) {
      case LinkLabel::nexthop: ++s.links_nexthop; break;
      case LinkLabel::echo: ++s.links_echo; break;
      case LinkLabel::multihop: ++s.links_multihop; break;
    }
  }
  for (const auto& ir : irs_) {
    if (ir.last_hop) {
      ++s.last_hop_irs;
      if (ir.dest_asns.empty()) ++s.last_hop_irs_empty_dest;
      continue;
    }
    ++s.irs_with_links;
    bool has_n = false, has_e = false;
    for (int lid : ir.out_links) {
      const LinkLabel lab = links_[static_cast<std::size_t>(lid)].label;
      has_n |= lab == LinkLabel::nexthop;
      has_e |= lab == LinkLabel::echo;
    }
    if (has_e && !has_n) ++s.irs_echo_only_links;
  }
  return s;
}

}  // namespace graph
